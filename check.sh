#!/bin/sh
# check.sh — the one-command repo gate: vet + tier-1 tests + race detector.
# The race pass matters here: view maintenance fans Propagate+Apply out over
# a worker pool by default, and the Store/UpdatedReader read-only contracts
# it relies on are only enforced by these tests.
#
# Usage: ./check.sh [extra go test args, e.g. -short]
set -eu
cd "$(dirname "$0")"

echo "== gofmt -l" >&2
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./..." >&2
go vet ./...

echo "== go test ./... (tier-1, with coverage)" >&2
coverprofile="${TMPDIR:-/tmp}/xqview_cover.$$"
trap 'rm -f "$coverprofile"' EXIT
go test -coverprofile="$coverprofile" "$@" ./...

# Coverage floor: total statement coverage was 73.1% when the gate was
# introduced; fail if a change sheds more than 2 points. Raise the floor
# when coverage durably improves, never lower it to admit a regression.
cover_floor=71.0
echo "== coverage floor ($cover_floor%)" >&2
go tool cover -func="$coverprofile" | awk -v floor="$cover_floor" '
	/^total:/ {
		pct = $NF; sub(/%/, "", pct)
		printf "total statement coverage: %s%% (floor %s%%)\n", pct, floor
		if (pct + 0 < floor + 0) {
			printf "COVERAGE REGRESSION: %s%% < %s%%\n", pct, floor
			exit 1
		}
	}
' >&2

echo "== go test -race ./..." >&2
go test -race "$@" ./...

# Fuzz smoke: each native fuzz target runs briefly past its checked-in
# seed corpus (testdata/fuzz/) so newly-introduced panics in the query
# frontend, the update language, or FlexKey gap generation surface here
# rather than only in long offline fuzzing.
fuzz_smoke="${FUZZ_SMOKE:-3s}"
echo "== fuzz smoke (-fuzztime $fuzz_smoke per target)" >&2
go test ./internal/compile/ -run '^$' -fuzz '^FuzzCompile$' -fuzztime "$fuzz_smoke" >&2
go test ./internal/update/ -run '^$' -fuzz '^FuzzParseUpdates$' -fuzztime "$fuzz_smoke" >&2
go test ./internal/flexkey/ -run '^$' -fuzz '^FuzzFlexKeyBetween$' -fuzztime "$fuzz_smoke" >&2

# Cross-PR benchmark regression gates: when both captures of a pair exist,
# the shared benchmark names must not have regressed past the threshold.
# The PR4→PR5 pair is held to 5%: its shared names are the 1000-book
# cached-join rounds, and PR 5 routed them through the round-transaction
# staging machinery, which was required to cost ≤5%.
if [ -f BENCH_PR3.json ] && [ -f BENCH_PR4.json ]; then
	echo "== bench_diff BENCH_PR3.json BENCH_PR4.json (15% gate)" >&2
	scripts/bench_diff.sh BENCH_PR3.json BENCH_PR4.json 15 >&2
fi
if [ -f BENCH_PR4.json ] && [ -f BENCH_PR5.json ]; then
	echo "== bench_diff BENCH_PR4.json BENCH_PR5.json (5% gate)" >&2
	scripts/bench_diff.sh BENCH_PR4.json BENCH_PR5.json 5 >&2
fi
# The PR5→PR6 pair is an improvement lock, not an overhead allowance: PR 6
# moved round tuple traffic into a round-scoped arena, compacts batches
# before validation, and dropped the per-call O(source) seen-map wipe from
# path navigation, landing every maintenance arm at 37–61% below its PR 5
# ns/op and allocs/op at a sixth. The 0% ns/op gate keeps any later change
# from quietly giving that back; cache=skip is excluded from the ns gate
# because a pruned round runs in microseconds and its ns/op is scheduler
# noise, but it stays in the allocs gate (allocs are deterministic, with a
# small tolerance for sync.Pool victim-cache timing).
if [ -f BENCH_PR5.json ] && [ -f BENCH_PR6.json ]; then
	echo "== bench_diff BENCH_PR5.json BENCH_PR6.json (0% gate, maintenance arms)" >&2
	scripts/bench_diff.sh BENCH_PR5.json BENCH_PR6.json 0 'cache=on|cache=off|commit|rollback' >&2
	echo "== allocs_diff BENCH_PR5.json BENCH_PR6.json (5% gate)" >&2
	scripts/allocs_diff.sh BENCH_PR5.json BENCH_PR6.json 5 >&2
fi

# PR 7 round telemetry: the xqtop dashboard must build, and its golden
# frames must hold at both reference terminal sizes (the renderer is pure,
# so the frames are fully deterministic).
echo "== xqtop build + golden frames" >&2
go build ./cmd/xqtop ./cmd/xqview
go test ./internal/top/ -run 'TestRenderGolden|TestRenderShape' >&2

# The PR6→PR7 pair is a parity lock: round telemetry is gated on
# obs.Enabled(), so the default-off maintenance arms must not move (3% ns/op
# noise margin, 5% allocs). Within the PR 7 capture itself, the obs=on arm
# of BenchmarkMaintainTelemetry prices the whole enabled pipeline on the
# 1000-book cached join round and is bounded at 1% over its obs=off twin.
if [ -f BENCH_PR6.json ] && [ -f BENCH_PR7.json ]; then
	echo "== bench_diff BENCH_PR6.json BENCH_PR7.json (3% gate, maintenance arms)" >&2
	scripts/bench_diff.sh BENCH_PR6.json BENCH_PR7.json 3 'cache=on|cache=off|commit|rollback' >&2
	echo "== allocs_diff BENCH_PR6.json BENCH_PR7.json (5% gate)" >&2
	scripts/allocs_diff.sh BENCH_PR6.json BENCH_PR7.json 5 >&2
fi
if [ -f BENCH_PR7.json ]; then
	echo "== telemetry-on overhead (1% gate, BenchmarkMaintainTelemetry)" >&2
	awk '
		/"name": "BenchmarkMaintainTelemetry\/obs=off"/ {
			off = $0; sub(/.*"ns_per_op": /, "", off); sub(/[,}].*/, "", off)
		}
		/"name": "BenchmarkMaintainTelemetry\/obs=on"/ {
			on = $0; sub(/.*"ns_per_op": /, "", on); sub(/[,}].*/, "", on)
		}
		END {
			if (!off || !on) { print "BENCH_PR7.json missing telemetry arms"; exit 2 }
			delta = 100 * (on - off) / off
			printf "telemetry on/off: %.0f / %.0f ns/op (%+.2f%%, threshold 1%%)\n", on, off, delta
			if (delta > 1) { printf "REGRESSION: enabled telemetry costs %.2f%% > 1%%\n", delta; exit 1 }
		}
	' BENCH_PR7.json >&2
fi

# PR 9 shared sub-plan maintenance. The seed→PR9 pair is a parity lock on
# the single-view maintenance arms: a lone view has no cross-view prefix to
# share, so the sharing machinery (fingerprinting at analyze time, the
# per-round DAG match, the empty shared phase) must not move them (3% ns/op
# noise margin, 5% allocs). BENCH_PR9_BASE.json is the seed (pre-PR9)
# capture re-run on the SAME machine as BENCH_PR9.json — cross-machine
# captures (e.g. the committed BENCH_PR7.json) differ by far more than the
# gate margin, so the baseline must be regenerated alongside the PR 9
# capture: git stash; scripts/bench_pr7.sh 10x 5; git stash pop;
# mv BENCH_PR7.json.new → BENCH_PR9_BASE.json. Within the PR 9 capture
# itself, the headline gate holds share=on at 50 overlapping views to ≥5x
# faster than share=off — the whole point of propagating a shared prefix
# once and fanning out.
if [ -f BENCH_PR9_BASE.json ] && [ -f BENCH_PR9.json ]; then
	echo "== bench_diff BENCH_PR9_BASE.json BENCH_PR9.json (3% gate, maintenance arms)" >&2
	scripts/bench_diff.sh BENCH_PR9_BASE.json BENCH_PR9.json 3 'cache=on|cache=off|commit|rollback' >&2
	echo "== allocs_diff BENCH_PR9_BASE.json BENCH_PR9.json (5% gate)" >&2
	scripts/allocs_diff.sh BENCH_PR9_BASE.json BENCH_PR9.json 5 >&2
fi
if [ -f BENCH_PR9.json ]; then
	echo "== shared sub-plan speedup (≥5x gate at 50 views)" >&2
	awk '
		/"name": "BenchmarkMaintainSharedViews\/views=50\/share=on"/ {
			on = $0; sub(/.*"ns_per_op": /, "", on); sub(/[,}].*/, "", on)
		}
		/"name": "BenchmarkMaintainSharedViews\/views=50\/share=off"/ {
			off = $0; sub(/.*"ns_per_op": /, "", off); sub(/[,}].*/, "", off)
		}
		END {
			if (!on || !off) { print "BENCH_PR9.json missing views=50 share arms"; exit 2 }
			speedup = off / on
			printf "share off/on at 50 views: %.0f / %.0f ns/op (%.1fx, threshold 5x)\n", off, on, speedup
			if (speedup < 5) { printf "REGRESSION: shared sub-plans only %.1fx faster < 5x\n", speedup; exit 1 }
		}
	' BENCH_PR9.json >&2
fi

# PR 10 MVCC snapshot serving. The concurrency battery runs under -race
# with an explicit deadline (a lost wakeup or livelock in the epoch
# registry must fail the gate, not hang it): the randomized linearizability
# sweep, the epoch-reclamation leak test, and the crash-consistency sweeps
# that pin reader isolation across aborted rounds. Arena poison is on under
# -race, so a published extent aliasing round-arena memory fails here too.
echo "== MVCC concurrency battery (-race, 300s deadline)" >&2
go test -race -timeout 300s \
	-run 'TestSnapshotLinearizability|TestSnapshotEpochReclamation|TestSnapRegLifecycle|TestCrashConsistencyEverySite|TestSharedCrashConsistencyEverySite' \
	. ./internal/core/ >&2

# The seed→PR10 pair is a parity lock on the maintenance arms: the bench
# harness drives core.MaintainAll with no epoch registry attached, so the
# MVCC machinery (COW extent apply, candidate version build, the epoch
# registry) must not move them (3% ns/op noise margin, 5% allocs).
# BENCH_PR10_BASE.json is the pre-PR10 tree re-benchmarked on the SAME
# machine as BENCH_PR10.json (cross-machine captures differ by more than
# the gate margin): git stash; scripts/bench_pr9.sh 10x 5; git stash pop;
# edit "pr" to "10-base"; mv BENCH_PR9.json BENCH_PR10_BASE.json.
if [ -f BENCH_PR10_BASE.json ] && [ -f BENCH_PR10.json ]; then
	echo "== bench_diff BENCH_PR10_BASE.json BENCH_PR10.json (3% gate, maintenance arms)" >&2
	scripts/bench_diff.sh BENCH_PR10_BASE.json BENCH_PR10.json 3 'cache=on|cache=off|commit|rollback' >&2
	echo "== allocs_diff BENCH_PR10_BASE.json BENCH_PR10.json (5% gate)" >&2
	scripts/allocs_diff.sh BENCH_PR10_BASE.json BENCH_PR10.json 5 >&2
fi
# Within the PR 10 capture, the headline gate: snapshot read p99 with
# maintenance rounds committing concurrently must stay under 2x the
# reader-only p99 — readers acquire a published version and never wait for
# the writer, so the only tail cost is sharing the machine with the round
# itself.
if [ -f BENCH_PR10.json ]; then
	echo "== mixed-workload read tail (p99 rounds=on ≤ 2x rounds=off)" >&2
	awk '
		/"name": "BenchmarkServeMixed\/read\/rounds=off"/ {
			off = $0; sub(/.*"p99_ns": /, "", off); sub(/[,}].*/, "", off)
		}
		/"name": "BenchmarkServeMixed\/read\/rounds=on"/ {
			on = $0; sub(/.*"p99_ns": /, "", on); sub(/[,}].*/, "", on)
		}
		END {
			if (!off || !on) { print "BENCH_PR10.json missing ServeMixed read arms"; exit 2 }
			ratio = on / off
			printf "read p99 rounds on/off: %.0f / %.0f ns (%.2fx, threshold 2x)\n", on, off, ratio
			if (ratio > 2) { printf "REGRESSION: concurrent rounds inflate read p99 %.2fx > 2x\n", ratio; exit 1 }
		}
	' BENCH_PR10.json >&2
fi

# Unused-field lint over the PR 9 DAG structs: a field of the shared-DAG
# plumbing that nothing reads means a broken subscription or fan-out path.
echo "== structcheck (shared DAG structs)" >&2
sh scripts/structcheck.sh internal/xat/shared.go internal/core/txn.go >&2

# Unused-field lint over the PR 10 MVCC structs: a field of the version or
# registry plumbing that nothing reads means a broken publish or drain path.
echo "== structcheck (MVCC snapshot structs)" >&2
sh scripts/structcheck.sh internal/core/snapshot.go internal/xmldoc/snapshot.go >&2

echo "check.sh: all green" >&2
