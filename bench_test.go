package xqview

// One benchmark per measured figure of the dissertation's evaluation: each
// regenerates its figure's data series (internal/bench prints the same rows
// via cmd/xbench). Micro-benchmarks for the engine kernels follow.

import (
	"fmt"
	"testing"

	"xqview/internal/bench"
	"xqview/internal/core"
	"xqview/internal/faultinject"
	"xqview/internal/journal"
	"xqview/internal/obs"
	"xqview/internal/update"
	"xqview/internal/xat"
	"xqview/internal/xmark"
	"xqview/internal/xmldoc"
)

// benchScale keeps figure sweeps fast enough for b.N iterations.
const benchScale = 0.05

func benchFigure(b *testing.B, run func(float64) (*bench.Figure, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		f, err := run(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(f.Rows) == 0 {
			b.Fatalf("%s produced no rows", f.ID)
		}
	}
}

func BenchmarkFig3_7_OrderCostQ1(b *testing.B)   { benchFigure(b, bench.Fig3_7) }
func BenchmarkFig3_8_OrderCostQ2(b *testing.B)   { benchFigure(b, bench.Fig3_8) }
func BenchmarkFig3_9_OrderCostQ3(b *testing.B)   { benchFigure(b, bench.Fig3_9) }
func BenchmarkFig3_10_OrderCostQ4(b *testing.B)  { benchFigure(b, bench.Fig3_10) }
func BenchmarkFig4_9_SemanticIDsQ1(b *testing.B) { benchFigure(b, bench.Fig4_9) }
func BenchmarkFig4_10_SemanticIDsQ2(b *testing.B) {
	benchFigure(b, bench.Fig4_10)
}
func BenchmarkFig9_1_EnableMaintenance(b *testing.B) { benchFigure(b, bench.Fig9_1) }
func BenchmarkFig9_2_DocumentSizes(b *testing.B)     { benchFigure(b, bench.Fig9_2) }
func BenchmarkFig9_3_Selectivity(b *testing.B)       { benchFigure(b, bench.Fig9_3) }
func BenchmarkFig9_4_InsertSizes(b *testing.B)       { benchFigure(b, bench.Fig9_4) }
func BenchmarkFig9_5_DeleteSizes(b *testing.B)       { benchFigure(b, bench.Fig9_5) }
func BenchmarkFig9_6_FragmentDelete(b *testing.B)    { benchFigure(b, bench.Fig9_6) }
func BenchmarkAblationDesignChoices(b *testing.B)    { benchFigure(b, bench.Ablation) }

// --- engine kernels ---

func benchBibStore(b *testing.B, n int) *xmldoc.Store {
	b.Helper()
	s, err := xmark.LoadBib(xmark.DefaultBib(n))
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkMaterializeFlat(b *testing.B) {
	s := benchBibStore(b, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewView(s, bench.BibQ1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaterializeGroupedJoin(b *testing.B) {
	s := benchBibStore(b, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewView(s, bench.BibQ2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaintainInsert(b *testing.B) {
	benchMaintain(b, func(s *xmldoc.Store, i int) []*update.Primitive {
		bib, _ := s.RootElem("bib.xml")
		return []*update.Primitive{{Kind: update.Insert, Doc: "bib.xml", Parent: bib,
			Frag: xmldoc.Elem("book", xmldoc.AttrF("year", "1991"),
				xmldoc.Elem("title", xmldoc.TextF(fmt.Sprintf("bench-%d", i))))}}
	})
}

func BenchmarkMaintainDelete(b *testing.B) {
	benchMaintain(b, func(s *xmldoc.Store, i int) []*update.Primitive {
		bib, _ := s.RootElem("bib.xml")
		books := xmldoc.ChildElems(s, bib, "book")
		if len(books) == 0 {
			b.Skip("ran out of books")
		}
		return []*update.Primitive{{Kind: update.Delete, Doc: "bib.xml", Key: books[0]}}
	})
}

func BenchmarkMaintainModify(b *testing.B) {
	benchMaintain(b, func(s *xmldoc.Store, i int) []*update.Primitive {
		prices, _ := s.RootElem("prices.xml")
		entries := xmldoc.ChildElems(s, prices, "entry")
		pr := xmldoc.ChildElems(s, entries[i%len(entries)], "price")
		texts := xmldoc.TextChildren(s, pr[0])
		return []*update.Primitive{{Kind: update.Replace, Doc: "prices.xml",
			Key: texts[0], NewValue: fmt.Sprintf("%d.00", i%90+10)}}
	})
}

func benchMaintain(b *testing.B, mk func(*xmldoc.Store, int) []*update.Primitive) {
	b.Helper()
	s := benchBibStore(b, 500)
	v, err := core.NewView(s, bench.BibQ2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.ApplyUpdates(mk(s, i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaintainMultiView is the PR 1 scaling benchmark: one validated
// batch propagated through N views, sequentially (par=1) and over the
// bounded worker pool (par=max, i.e. GOMAXPROCS). Views alternate between
// the cheap flat Q1 and the join+grouping Q2 so the pool schedules
// heterogeneous work. scripts/bench_pr1.sh captures this into
// BENCH_PR1.json.
func BenchmarkMaintainMultiView(b *testing.B) {
	arms := []struct {
		name string
		par  int
	}{
		{"par=1", 1},
		{"par=max", 0},
	}
	for _, nv := range []int{1, 4, 16} {
		for _, arm := range arms {
			b.Run(fmt.Sprintf("views=%d/%s", nv, arm.name), func(b *testing.B) {
				s := benchBibStore(b, 200)
				views := make([]*core.View, nv)
				for i := range views {
					q := bench.BibQ2
					if i%2 == 1 {
						q = bench.BibQ1
					}
					v, err := core.NewView(s, q)
					if err != nil {
						b.Fatal(err)
					}
					views[i] = v
				}
				bib, _ := s.RootElem("bib.xml")
				opts := core.Options{Parallelism: arm.par}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					prims := []*update.Primitive{{Kind: update.Insert, Doc: "bib.xml", Parent: bib,
						Frag: xmldoc.Elem("book", xmldoc.AttrF("year", "1992"),
							xmldoc.Elem("title", xmldoc.TextF(fmt.Sprintf("mv-%d", i))))}}
					if _, err := core.MaintainAll(s, views, prims, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkMaintainObserved is the PR 2 overhead benchmark: the same
// maintenance batch with observability fully off, with the metrics registry
// recording, and with span tracing on top. Comparing the arms (benchstat, or
// scripts/bench_pr2.sh into BENCH_PR2.json) bounds the cost of the
// instrumentation; the off arm must match BenchmarkMaintainInsert-era
// numbers since the disabled path is a nil-check.
func BenchmarkMaintainObserved(b *testing.B) {
	arms := []struct {
		name    string
		metrics bool
		traced  bool
	}{
		{"obs=off", false, false},
		{"obs=metrics", true, false},
		{"obs=trace", true, true},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			prev := obs.SetEnabled(arm.metrics)
			defer obs.SetEnabled(prev)
			s := benchBibStore(b, 200)
			views := make([]*core.View, 4)
			for i := range views {
				q := bench.BibQ2
				if i%2 == 1 {
					q = bench.BibQ1
				}
				v, err := core.NewView(s, q)
				if err != nil {
					b.Fatal(err)
				}
				views[i] = v
			}
			bib, _ := s.RootElem("bib.xml")
			opts := core.Options{Parallelism: 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if arm.traced {
					// A fresh tracer per iteration keeps the event buffer
					// from growing unboundedly across b.N.
					opts.Tracer = obs.NewTracer()
				}
				prims := []*update.Primitive{{Kind: update.Insert, Doc: "bib.xml", Parent: bib,
					Frag: xmldoc.Elem("book", xmldoc.AttrF("year", "1992"),
						xmldoc.Elem("title", xmldoc.TextF(fmt.Sprintf("ob-%d", i))))}}
				if _, err := core.MaintainAll(s, views, prims, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMaintainJournaled is the PR 3 overhead benchmark: the same
// maintenance batch as BenchmarkMaintainObserved with the provenance
// journal off and on (observability metrics off in both arms, so the off
// arm is allocation-comparable to BenchmarkMaintainObserved/obs=off). The
// on arm bounds the cost of recording verdicts, operator lineage and apply
// fusions into the bounded round ring.
func BenchmarkMaintainJournaled(b *testing.B) {
	for _, arm := range []struct {
		name      string
		journaled bool
	}{
		{"journal=off", false},
		{"journal=on", true},
	} {
		b.Run(arm.name, func(b *testing.B) {
			prevObs := obs.SetEnabled(false)
			defer obs.SetEnabled(prevObs)
			defer journal.SetEnabled(journal.SetEnabled(arm.journaled))
			journal.Default.Reset()
			defer journal.Default.Reset()
			s := benchBibStore(b, 200)
			views := make([]*core.View, 4)
			for i := range views {
				q := bench.BibQ2
				if i%2 == 1 {
					q = bench.BibQ1
				}
				v, err := core.NewView(s, q)
				if err != nil {
					b.Fatal(err)
				}
				views[i] = v
			}
			bib, _ := s.RootElem("bib.xml")
			opts := core.Options{Parallelism: 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				prims := []*update.Primitive{{Kind: update.Insert, Doc: "bib.xml", Parent: bib,
					Frag: xmldoc.Elem("book", xmldoc.AttrF("year", "1992"),
						xmldoc.Elem("title", xmldoc.TextF(fmt.Sprintf("jr-%d", i))))}}
				if _, err := core.MaintainAll(s, views, prims, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMaintainCached is the PR 4 state-cache benchmark: the same
// small-delta maintenance round over a large source document with the
// cross-round base-table cache off and on. The off arm re-derives every
// base operator table per round; the on arm serves them from the previous
// round and folds the round's own deltas forward, so the gap widens with
// source size. The cache=skip arm adds a second view over an unrelated
// document and batches touching only that document: with the relevance
// filter on, the join view's rounds are pruned entirely
// (views_skipped/op reports how many views each round skipped).
// scripts/bench_pr4.sh captures all arms into BENCH_PR4.json.
func BenchmarkMaintainCached(b *testing.B) {
	for _, arm := range []struct {
		name string
		opts core.Options
	}{
		{"cache=off", core.Options{Parallelism: 1}},
		{"cache=on", core.Options{Parallelism: 1, CacheBaseTables: true}},
	} {
		b.Run(arm.name, func(b *testing.B) {
			s := benchBibStore(b, 1000)
			v, err := core.NewView(s, bench.BibQ2)
			if err != nil {
				b.Fatal(err)
			}
			views := []*core.View{v}
			bib, _ := s.RootElem("bib.xml")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				prims := []*update.Primitive{{Kind: update.Insert, Doc: "bib.xml", Parent: bib,
					Frag: xmldoc.Elem("book", xmldoc.AttrF("year", "1993"),
						xmldoc.Elem("title", xmldoc.TextF(fmt.Sprintf("sc-%d", i))))}}
				if _, err := core.MaintainAll(s, views, prims, arm.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("cache=skip", func(b *testing.B) {
		s := benchBibStore(b, 1000)
		if _, err := s.Load("other.xml", "<other><item><name>seed</name></item></other>"); err != nil {
			b.Fatal(err)
		}
		joinView, err := core.NewView(s, bench.BibQ2)
		if err != nil {
			b.Fatal(err)
		}
		otherView, err := core.NewView(s,
			`<result>{ for $i in doc("other.xml")/other/item return <o>{$i/name}</o> }</result>`)
		if err != nil {
			b.Fatal(err)
		}
		views := []*core.View{joinView, otherView}
		other, _ := s.RootElem("other.xml")
		opts := core.Options{Parallelism: 1, CacheBaseTables: true, SkipDisjointViews: true}
		skips := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Every batch touches only other.xml: the join view must skip.
			prims := []*update.Primitive{{Kind: update.Insert, Doc: "other.xml", Parent: other,
				Frag: xmldoc.Elem("item", xmldoc.Elem("name", xmldoc.TextF(fmt.Sprintf("sk-%d", i))))}}
			stats, err := core.MaintainAll(s, views, prims, opts)
			if err != nil {
				b.Fatal(err)
			}
			for _, ms := range stats {
				skips += ms.Skipped
			}
		}
		b.ReportMetric(float64(skips)/float64(b.N), "views_skipped/op")
	})
}

// BenchmarkMaintainTransactional is the PR 5 round-transaction benchmark
// on the same 1000-book join round as BenchmarkMaintainCached. The commit
// arm measures the steady-state cost of the always-on staging machinery
// (undo log, extent copy, prepared cache commit); comparing its MaintainCached
// twin across BENCH_PR4.json/BENCH_PR5.json bounds that overhead at 5% in
// check.sh. The rollback arm arms a fault at the apply boundary every round,
// so each iteration pays Validate+Propagate+a partial Apply and then a full
// rollback — the worst-case price of a failed round.
// scripts/bench_pr5.sh captures both into BENCH_PR5.json.
func BenchmarkMaintainTransactional(b *testing.B) {
	run := func(b *testing.B, faultSite string) {
		s := benchBibStore(b, 1000)
		v, err := core.NewView(s, bench.BibQ2)
		if err != nil {
			b.Fatal(err)
		}
		views := []*core.View{v}
		bib, _ := s.RootElem("bib.xml")
		opts := core.Options{Parallelism: 1, CacheBaseTables: true}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			prims := []*update.Primitive{{Kind: update.Insert, Doc: "bib.xml", Parent: bib,
				Frag: xmldoc.Elem("book", xmldoc.AttrF("year", "1993"),
					xmldoc.Elem("title", xmldoc.TextF(fmt.Sprintf("tx-%d", i))))}}
			if faultSite != "" {
				if err := faultinject.Arm(faultSite, faultinject.ModeError, 1); err != nil {
					b.Fatal(err)
				}
			}
			_, err := core.MaintainAll(s, views, prims, opts)
			if faultSite == "" && err != nil {
				b.Fatal(err)
			}
			if faultSite != "" && err == nil {
				b.Fatal("armed round unexpectedly committed")
			}
		}
		b.StopTimer()
		faultinject.Reset()
	}
	b.Run("commit", func(b *testing.B) { run(b, "") })
	b.Run("rollback", func(b *testing.B) { run(b, "deepunion.apply") })
}

// BenchmarkMaintainTelemetry is the PR 7 round-telemetry overhead benchmark:
// the BenchmarkMaintainCached/cache=on round (1000-book cached join, one
// small insert per round) with the obs gate off and on. The on arm pays the
// whole recording pipeline — phase histograms, the per-round RoundSample
// (cache-stat diffing, arena footprint, the runtime/metrics heap-allocs
// probe) and the ring append; comparing the arms (scripts/bench_pr7.sh into
// BENCH_PR7.json) bounds that cost at 1% in check.sh. The off arm must stay
// identical to BenchmarkMaintainCached/cache=on, since disabled telemetry is
// one atomic load.
func BenchmarkMaintainTelemetry(b *testing.B) {
	for _, arm := range []struct {
		name string
		on   bool
	}{
		{"obs=off", false},
		{"obs=on", true},
	} {
		b.Run(arm.name, func(b *testing.B) {
			defer obs.SetEnabled(obs.SetEnabled(arm.on))
			defer obs.Rounds.Reset()
			s := benchBibStore(b, 1000)
			v, err := core.NewView(s, bench.BibQ2)
			if err != nil {
				b.Fatal(err)
			}
			views := []*core.View{v}
			bib, _ := s.RootElem("bib.xml")
			opts := core.Options{Parallelism: 1, CacheBaseTables: true}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				prims := []*update.Primitive{{Kind: update.Insert, Doc: "bib.xml", Parent: bib,
					Frag: xmldoc.Elem("book", xmldoc.AttrF("year", "1993"),
						xmldoc.Elem("title", xmldoc.TextF(fmt.Sprintf("tm-%d", i))))}}
				if _, err := core.MaintainAll(s, views, prims, opts); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if arm.on && obs.Rounds.Total() == 0 {
				b.Fatal("telemetry arm recorded no round samples")
			}
		})
	}
}

// sharedBenchQuery is one member of the shared-prefix view family: every
// view computes the same bib⋈prices title join and differs only in the name
// of the element wrapping each joined pair, so the whole join subtree —
// sources, navigations and the join itself — fingerprints identically across
// views while the tagger suffix stays private.
func sharedBenchQuery(i int) string {
	return fmt.Sprintf(`<result>{
	for $b in doc("bib.xml")/bib/book,
	    $e in doc("prices.xml")/prices/entry
	where $b/title = $e/b-title
	return <r%d>{$b/title} {$e/price}</r%d>
}</result>`, i, i)
}

// BenchmarkMaintainSharedViews is the PR 9 shared sub-plan benchmark: N
// views over one structurally identical join prefix, maintained with
// cross-view sharing off (every view re-propagates the join) and on (the
// join's delta propagates once per round and fans out to N private tagger
// suffixes). Both arms run the same warm state cache, so the gap isolates
// the per-view propagation work sharing removes; check.sh gates the on arm
// at ≥5x the off arm at 50 views via scripts/bench_pr9.sh → BENCH_PR9.json.
func BenchmarkMaintainSharedViews(b *testing.B) {
	for _, nv := range []int{10, 50, 100} {
		for _, arm := range []struct {
			name  string
			share bool
		}{
			{"share=on", true},
			{"share=off", false},
		} {
			b.Run(fmt.Sprintf("views=%d/%s", nv, arm.name), func(b *testing.B) {
				s := benchBibStore(b, 500)
				views := make([]*core.View, nv)
				plans := make([]*xat.Plan, nv)
				for i := range views {
					v, err := core.NewView(s, sharedBenchQuery(i))
					if err != nil {
						b.Fatal(err)
					}
					views[i] = v
					plans[i] = v.Plan
				}
				opts := core.Options{Parallelism: 1, CacheBaseTables: true, ShareSubplans: arm.share}
				if arm.share {
					// A persistent DAG keeps the shared cache partition warm
					// across rounds, same as the Database integration does.
					opts.SharedDAG = xat.BuildSharedDAG(plans)
				}
				bib, _ := s.RootElem("bib.xml")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					prims := []*update.Primitive{{Kind: update.Insert, Doc: "bib.xml", Parent: bib,
						Frag: xmldoc.Elem("book", xmldoc.AttrF("year", "1994"),
							xmldoc.Elem("title", xmldoc.TextF(fmt.Sprintf("sv-%d", i))))}}
					if _, err := core.MaintainAll(s, views, prims, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkRecomputeBaseline(b *testing.B) {
	s := benchBibStore(b, 500)
	bib, _ := s.RootElem("bib.xml")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prims := []*update.Primitive{{Kind: update.Insert, Doc: "bib.xml", Parent: bib,
			Frag: xmldoc.Elem("book", xmldoc.AttrF("year", "1991"),
				xmldoc.Elem("title", xmldoc.TextF(fmt.Sprintf("bench-%d", i))))}}
		if _, err := core.Recompute(s, bench.BibQ2, prims); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXMarkGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := xmark.LoadSite(xmark.DefaultSite(500)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelfMaintainableScaling demonstrates the headline property of
// self-maintainable views (Sec 1.4): refresh time stays flat as the source
// document grows, because no base state is re-derived.
func BenchmarkSelfMaintainableScaling(b *testing.B) {
	for _, n := range []int{250, 1000, 4000} {
		n := n
		b.Run(fmt.Sprintf("books=%d", n), func(b *testing.B) {
			s := benchBibStore(b, n)
			v, err := core.NewView(s, bench.BibQ1)
			if err != nil {
				b.Fatal(err)
			}
			if !v.Plan.SelfMaintainable() {
				b.Fatal("Q1 should be self-maintainable")
			}
			bib, _ := s.RootElem("bib.xml")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				prims := []*update.Primitive{{Kind: update.Insert, Doc: "bib.xml", Parent: bib,
					Frag: xmldoc.Elem("book", xmldoc.AttrF("year", "1991"),
						xmldoc.Elem("title", xmldoc.TextF(fmt.Sprintf("s-%d", i))))}}
				if _, err := v.ApplyUpdates(prims); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
