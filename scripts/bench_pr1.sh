#!/bin/sh
# bench_pr1.sh — capture the PR 1 multi-view scaling benchmark into
# BENCH_PR1.json, seeding the repo's perf trajectory. Subsequent PRs append
# their own BENCH_PRn.json the same way and compare against this baseline.
#
# Usage: scripts/bench_pr1.sh [benchtime]
#   benchtime  go test -benchtime value (default 10x)
set -eu
cd "$(dirname "$0")/.."

benchtime="${1:-10x}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkMaintainMultiView' -benchmem \
	-benchtime "$benchtime" . | tee "$raw" >&2

{
	printf '{\n'
	printf '  "pr": 1,\n'
	printf '  "benchmark": "BenchmarkMaintainMultiView",\n'
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "cpus": %s,\n' "$(nproc 2>/dev/null || echo 1)"
	printf '  "goos_goarch": "%s/%s",\n' "$(go env GOOS)" "$(go env GOARCH)"
	printf '  "results": [\n'
	awk '
		/^BenchmarkMaintainMultiView\// {
			name = $1; sub(/-[0-9]+$/, "", name)
			line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, $2, $3, $5, $7)
			if (n++) printf(",\n")
			printf("%s", line)
		}
		END { printf("\n") }
	' "$raw"
	printf '  ]\n'
	printf '}\n'
} > BENCH_PR1.json

echo "wrote BENCH_PR1.json" >&2
