#!/bin/sh
# bench_pr9.sh — capture the PR 9 shared sub-plan benchmarks into
# BENCH_PR9.json. BenchmarkMaintainSharedViews is the headline figure:
# 10/50/100 views over one structurally identical join prefix, with
# cross-view sharing off (every view re-propagates the join) and on (the
# join's delta propagates once per round and fans out to private tagger
# suffixes); check.sh gates share=on at 50 views to ≥5x share=off.
# BenchmarkMaintainCached and BenchmarkMaintainTransactional re-run under
# the same names as the seed capture (BENCH_PR9_BASE.json — the pre-PR9
# tree benchmarked on the SAME machine via scripts/bench_pr7.sh) so
# scripts/bench_diff.sh and scripts/allocs_diff.sh can hold the pair to
# parity: single-view rounds have no shareable cross-view prefix, so the
# sharing machinery must not move them (3% ns/op noise margin, 5% allocs).
#
# Each benchmark runs -count times; the capture stores the per-name MEDIAN
# plus the raw per-run ns/op samples, so scripts/bench_diff.sh can print
# benchstat-style median ± spread instead of bare ratios.
#
# Usage: scripts/bench_pr9.sh [benchtime] [count]
#   benchtime  go test -benchtime value (default 10x)
#   count      go test -count value (default 3)
set -eu
cd "$(dirname "$0")/.."

benchtime="${1:-10x}"
count="${2:-3}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkMaintainSharedViews|BenchmarkMaintainCached|BenchmarkMaintainTransactional' \
	-benchmem -benchtime "$benchtime" -count "$count" . | tee "$raw" >&2

{
	printf '{\n'
	printf '  "pr": 9,\n'
	printf '  "benchmark": "BenchmarkMaintainSharedViews+BenchmarkMaintainCached+BenchmarkMaintainTransactional",\n'
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "count": %s,\n' "$count"
	printf '  "cpus": %s,\n' "$(nproc 2>/dev/null || echo 1)"
	printf '  "goos_goarch": "%s/%s",\n' "$(go env GOOS)" "$(go env GOARCH)"
	printf '  "results": [\n'
	awk '
		function median(vals, name, n,    i, j, tmp, a) {
			for (i = 1; i <= n; i++) a[i] = vals[name, i]
			for (i = 2; i <= n; i++)
				for (j = i; j > 1 && a[j-1] > a[j]; j--) {
					tmp = a[j]; a[j] = a[j-1]; a[j-1] = tmp
				}
			if (n % 2) return a[(n + 1) / 2]
			return (a[n / 2] + a[n / 2 + 1]) / 2
		}
		/^Benchmark(MaintainSharedViews|MaintainCached|MaintainTransactional)/ {
			name = $1; sub(/-[0-9]+$/, "", name)
			if (!(name in runs)) order[no++] = name
			r = ++runs[name]
			for (i = 2; i < NF; i++) {
				if ($(i+1) == "ns/op") ns[name, r] = $i
				else if ($(i+1) == "B/op") { bytes[name, r] = $i; hasb[name] = 1 }
				else if ($(i+1) == "allocs/op") { allocs[name, r] = $i; hasa[name] = 1 }
				else if ($(i+1) == "views_skipped/op") { skips[name, r] = $i; hass[name] = 1 }
			}
			iters[name] += $2
		}
		END {
			for (j = 0; j < no; j++) {
				name = order[j]; n = runs[name]
				line = sprintf("    {\"name\": \"%s\", \"runs\": %d, \"iterations\": %d, \"ns_per_op\": %.0f", \
					name, n, iters[name] / n, median(ns, name, n))
				line = line ", \"ns_samples\": ["
				for (i = 1; i <= n; i++)
					line = line sprintf("%s%.0f", i > 1 ? ", " : "", ns[name, i])
				line = line "]"
				if (hasb[name]) line = line sprintf(", \"bytes_per_op\": %.0f", median(bytes, name, n))
				if (hasa[name]) line = line sprintf(", \"allocs_per_op\": %.0f", median(allocs, name, n))
				if (hass[name]) line = line sprintf(", \"views_skipped_per_op\": %.3f", median(skips, name, n))
				line = line "}"
				if (j) printf(",\n")
				printf("%s", line)
			}
			printf("\n")
		}
	' "$raw"
	printf '  ]\n'
	printf '}\n'
} > BENCH_PR9.json

echo "wrote BENCH_PR9.json" >&2
