#!/bin/sh
# allocs_diff.sh — compare two BENCH_PR*.json captures on allocs_per_op, the
# allocation-gate companion to bench_diff.sh's ns/op gate. Benchmarks are
# matched by name; only names carrying allocs_per_op in both files are
# compared. Exits 1 if any shared benchmark's allocs/op grew by more than
# the threshold (default 5%) — the arena makes allocation count a guarded
# budget, not an incidental statistic, so a new heap alloc on the round hot
# path fails the build instead of slowly eating the PR 6 win.
#
# An optional name filter (egrep pattern) restricts the comparison to
# matching benchmarks, mirroring bench_diff.sh.
#
# Usage: scripts/allocs_diff.sh old.json new.json [threshold_pct] [name_egrep]
set -eu

if [ $# -lt 2 ]; then
	echo "usage: $0 old.json new.json [threshold_pct] [name_egrep]" >&2
	exit 2
fi
old="$1"
new="$2"
threshold="${3:-5}"
filter="${4:-.}"

# The capture scripts emit one result object per line, so a line-oriented
# awk extraction of (name, allocs_per_op) is exact for these files.
extract() {
	awk '
		/"name":/ && /"allocs_per_op":/ {
			name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
			al = $0; sub(/.*"allocs_per_op": /, "", al); sub(/[,}].*/, "", al)
			print name, al
		}
	' "$1" | grep -E -- "$filter" || true
}

extract "$old" >"${TMPDIR:-/tmp}/allocs_diff_old.$$"
extract "$new" >"${TMPDIR:-/tmp}/allocs_diff_new.$$"
trap 'rm -f "${TMPDIR:-/tmp}/allocs_diff_old.$$" "${TMPDIR:-/tmp}/allocs_diff_new.$$"' EXIT

awk -v threshold="$threshold" -v oldfile="$old" -v newfile="$new" '
	NR == FNR { old[$1] = $2; next }
	{
		if (!($1 in old)) next
		shared++
		delta = 100 * ($2 - old[$1]) / old[$1]
		printf "%-60s %14.0f %14.0f %+8.1f%%\n", $1, old[$1], $2, delta
		if (delta > threshold) {
			regressed++
			printf "REGRESSION: %s allocs/op up %.1f%% (threshold %s%%)\n", $1, delta, threshold
		}
	}
	END {
		if (!shared) {
			printf "no shared benchmarks between %s and %s\n", oldfile, newfile
			exit 2
		}
		if (regressed) exit 1
	}
' "${TMPDIR:-/tmp}/allocs_diff_old.$$" "${TMPDIR:-/tmp}/allocs_diff_new.$$"
