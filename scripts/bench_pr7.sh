#!/bin/sh
# bench_pr7.sh — capture the PR 7 round-telemetry benchmarks into
# BENCH_PR7.json. BenchmarkMaintainCached and BenchmarkMaintainTransactional
# re-run under the same names as BENCH_PR6.json so scripts/bench_diff.sh and
# scripts/allocs_diff.sh can hold the pair to "no regression": the telemetry
# pipeline is gated on obs.Enabled(), so the default-off maintenance arms
# must not move. BenchmarkMaintainTelemetry prices the enabled pipeline
# itself — the obs=on arm runs phase histograms, per-round sample assembly
# (cache-stat diffing, arena footprint, the runtime/metrics heap probe) and
# the ring append on the 1000-book cached join round; check.sh bounds
# obs=on at 1% over obs=off from this capture.
#
# Each benchmark runs -count times and the capture stores the per-name
# MEDIAN: the benchmark machine is noisy and a single slow run would smear
# a mean well past the 1% telemetry gate, while the median shrugs it off.
#
# Usage: scripts/bench_pr7.sh [benchtime] [count]
#   benchtime  go test -benchtime value (default 10x)
#   count      go test -count value (default 3)
set -eu
cd "$(dirname "$0")/.."

benchtime="${1:-10x}"
count="${2:-3}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkMaintainCached|BenchmarkMaintainTransactional|BenchmarkMaintainTelemetry' \
	-benchmem -benchtime "$benchtime" -count "$count" . | tee "$raw" >&2

{
	printf '{\n'
	printf '  "pr": 7,\n'
	printf '  "benchmark": "BenchmarkMaintainCached+BenchmarkMaintainTransactional+BenchmarkMaintainTelemetry",\n'
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "count": %s,\n' "$count"
	printf '  "cpus": %s,\n' "$(nproc 2>/dev/null || echo 1)"
	printf '  "goos_goarch": "%s/%s",\n' "$(go env GOOS)" "$(go env GOARCH)"
	printf '  "results": [\n'
	awk '
		function median(vals, name, n,    i, j, tmp, a) {
			for (i = 1; i <= n; i++) a[i] = vals[name, i]
			for (i = 2; i <= n; i++)
				for (j = i; j > 1 && a[j-1] > a[j]; j--) {
					tmp = a[j]; a[j] = a[j-1]; a[j-1] = tmp
				}
			if (n % 2) return a[(n + 1) / 2]
			return (a[n / 2] + a[n / 2 + 1]) / 2
		}
		/^Benchmark(MaintainCached|MaintainTransactional|MaintainTelemetry)/ {
			name = $1; sub(/-[0-9]+$/, "", name)
			if (!(name in runs)) order[no++] = name
			r = ++runs[name]
			for (i = 2; i < NF; i++) {
				if ($(i+1) == "ns/op") ns[name, r] = $i
				else if ($(i+1) == "B/op") { bytes[name, r] = $i; hasb[name] = 1 }
				else if ($(i+1) == "allocs/op") { allocs[name, r] = $i; hasa[name] = 1 }
				else if ($(i+1) == "views_skipped/op") { skips[name, r] = $i; hass[name] = 1 }
			}
			iters[name] += $2
		}
		END {
			for (j = 0; j < no; j++) {
				name = order[j]; n = runs[name]
				line = sprintf("    {\"name\": \"%s\", \"runs\": %d, \"iterations\": %d, \"ns_per_op\": %.0f", \
					name, n, iters[name] / n, median(ns, name, n))
				if (hasb[name]) line = line sprintf(", \"bytes_per_op\": %.0f", median(bytes, name, n))
				if (hasa[name]) line = line sprintf(", \"allocs_per_op\": %.0f", median(allocs, name, n))
				if (hass[name]) line = line sprintf(", \"views_skipped_per_op\": %.3f", median(skips, name, n))
				line = line "}"
				if (j) printf(",\n")
				printf("%s", line)
			}
			printf("\n")
		}
	' "$raw"
	printf '  ]\n'
	printf '}\n'
} > BENCH_PR7.json

echo "wrote BENCH_PR7.json" >&2
