#!/bin/sh
# bench_pr5.sh — capture the PR 5 round-transaction benchmarks into
# BENCH_PR5.json. BenchmarkMaintainCached is re-run so scripts/bench_diff.sh
# can compare this capture against BENCH_PR4.json on the shared 1000-book
# names — that diff is the ≤5% staging-overhead bound enforced by check.sh,
# since PR 5 made every MaintainAll round stage through the transaction
# machinery (store undo log, extent copy, prepared cache commit).
# BenchmarkMaintainTransactional adds the explicit commit/rollback arms on
# the same join round; the rollback arm prices a fault-aborted round.
#
# Usage: scripts/bench_pr5.sh [benchtime]
#   benchtime  go test -benchtime value (default 10x)
set -eu
cd "$(dirname "$0")/.."

benchtime="${1:-10x}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkMaintainCached|BenchmarkMaintainTransactional' \
	-benchmem -benchtime "$benchtime" . | tee "$raw" >&2

{
	printf '{\n'
	printf '  "pr": 5,\n'
	printf '  "benchmark": "BenchmarkMaintainCached+BenchmarkMaintainTransactional",\n'
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "cpus": %s,\n' "$(nproc 2>/dev/null || echo 1)"
	printf '  "goos_goarch": "%s/%s",\n' "$(go env GOOS)" "$(go env GOARCH)"
	printf '  "results": [\n'
	awk '
		/^Benchmark(MaintainCached|MaintainTransactional)\// {
			name = $1; sub(/-[0-9]+$/, "", name)
			ns = ""; bytes = ""; allocs = ""; skips = ""
			for (i = 2; i < NF; i++) {
				if ($(i+1) == "ns/op") ns = $i
				else if ($(i+1) == "B/op") bytes = $i
				else if ($(i+1) == "allocs/op") allocs = $i
				else if ($(i+1) == "views_skipped/op") skips = $i
			}
			line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, ns)
			if (bytes != "") line = line sprintf(", \"bytes_per_op\": %s", bytes)
			if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
			if (skips != "") line = line sprintf(", \"views_skipped_per_op\": %s", skips)
			line = line "}"
			if (n++) printf(",\n")
			printf("%s", line)
		}
		END { printf("\n") }
	' "$raw"
	printf '  ]\n'
	printf '}\n'
} > BENCH_PR5.json

echo "wrote BENCH_PR5.json" >&2
