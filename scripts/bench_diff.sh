#!/bin/sh
# bench_diff.sh — compare two BENCH_PR*.json files produced by the
# scripts/bench_pr*.sh capture scripts and flag ns/op regressions.
# Benchmarks are matched by name; only names present in both files are
# compared. Exits 1 if any shared benchmark regressed by more than the
# threshold (default 15%).
#
# Captures that store per-run samples (newer scripts emit "ns_samples"
# next to the median) get benchstat-style output: each side prints its
# median ± half-spread of the runs as a percentage, so a wide interval
# flags a noisy capture whose delta should not be over-read. The
# regression decision itself always compares the medians — the spread is
# diagnostic, not a tolerance.
#
# An optional name filter (egrep pattern) restricts the comparison to
# matching benchmarks — for pairs where some arms trade off deliberately
# (e.g. a slower rollback path buying a faster commit path).
#
# Usage: scripts/bench_diff.sh old.json new.json [threshold_pct] [name_egrep]
set -eu

if [ $# -lt 2 ]; then
	echo "usage: $0 old.json new.json [threshold_pct] [name_egrep]" >&2
	exit 2
fi
old="$1"
new="$2"
threshold="${3:-15}"
filter="${4:-.}"

# The capture scripts emit one result object per line, so a line-oriented
# awk extraction of (name, ns_per_op, spread%) is exact for these files.
# The spread column is the half-width of the sample range relative to the
# median, 0 when the capture predates per-run samples.
extract() {
	awk '
		/"name":/ {
			name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
			ns = $0; sub(/.*"ns_per_op": /, "", ns); sub(/[,}].*/, "", ns)
			spread = 0
			if ($0 ~ /"ns_samples": \[/) {
				s = $0; sub(/.*"ns_samples": \[/, "", s); sub(/\].*/, "", s)
				n = split(s, a, /, */)
				min = a[1] + 0; max = a[1] + 0
				for (i = 2; i <= n; i++) {
					if (a[i] + 0 < min) min = a[i] + 0
					if (a[i] + 0 > max) max = a[i] + 0
				}
				if (ns + 0 > 0) spread = 100 * (max - min) / 2 / ns
			}
			printf "%s %s %.1f\n", name, ns, spread
		}
	' "$1" | grep -E -- "$filter" || true
}

extract "$old" >"${TMPDIR:-/tmp}/bench_diff_old.$$"
extract "$new" >"${TMPDIR:-/tmp}/bench_diff_new.$$"
trap 'rm -f "${TMPDIR:-/tmp}/bench_diff_old.$$" "${TMPDIR:-/tmp}/bench_diff_new.$$"' EXIT

awk -v threshold="$threshold" -v oldfile="$old" -v newfile="$new" '
	NR == FNR { old[$1] = $2; oldspread[$1] = $3; next }
	{
		if (!($1 in old)) next
		shared++
		delta = 100 * ($2 - old[$1]) / old[$1]
		if (oldspread[$1] > 0 || $3 > 0)
			printf "%-60s %14.0f ±%4.1f%% %14.0f ±%4.1f%% %+8.1f%%\n", \
				$1, old[$1], oldspread[$1], $2, $3, delta
		else
			printf "%-60s %14.0f %14.0f %+8.1f%%\n", $1, old[$1], $2, delta
		if (delta > threshold) {
			regressed++
			printf "REGRESSION: %s ns/op up %.1f%% (threshold %s%%)\n", $1, delta, threshold
		}
	}
	END {
		if (!shared) {
			printf "no shared benchmarks between %s and %s\n", oldfile, newfile
			exit 2
		}
		if (regressed) exit 1
	}
' "${TMPDIR:-/tmp}/bench_diff_old.$$" "${TMPDIR:-/tmp}/bench_diff_new.$$"
