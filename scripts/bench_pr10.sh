#!/bin/sh
# bench_pr10.sh — capture the PR 10 MVCC snapshot-serving benchmarks into
# BENCH_PR10.json. BenchmarkServeMixed is the headline figure: snapshot
# read latency (acquire + serialize + release) idle vs with a paced writer
# committing maintenance rounds concurrently, with per-op p50/p99 reported
# as custom metrics; check.sh gates the rounds=on p99 to ≤2x the rounds=off
# p99. The maintenance arms (BenchmarkMaintainCached, -Transactional,
# -SharedViews) re-run under the same names as BENCH_PR10_BASE.json — the
# pre-PR10 tree benchmarked on the SAME machine — so scripts/bench_diff.sh
# and scripts/allocs_diff.sh can hold the pair to parity: those benches
# drive core.MaintainAll with no epoch registry attached, so the MVCC
# machinery must not move them (3% ns/op noise margin, 5% allocs).
#
# Each benchmark runs -count times; the capture stores the per-name MEDIAN
# plus the raw per-run ns/op samples, so scripts/bench_diff.sh can print
# benchstat-style median ± spread instead of bare ratios.
#
# Usage: scripts/bench_pr10.sh [benchtime] [count]
#   benchtime  go test -benchtime value (default 10x; ServeMixed quantiles
#              want ops, so 2000x is used for it when benchtime is 10x)
#   count      go test -count value (default 3)
set -eu
cd "$(dirname "$0")/.."

benchtime="${1:-10x}"
count="${2:-3}"
servetime="$benchtime"
if [ "$benchtime" = "10x" ]; then
	# 10 iterations cannot resolve a p99; give the serving arms real samples.
	servetime="2000x"
fi
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkMaintainSharedViews|BenchmarkMaintainCached|BenchmarkMaintainTransactional' \
	-benchmem -benchtime "$benchtime" -count "$count" . | tee "$raw" >&2
go test -run '^$' -bench 'BenchmarkServeMixed' \
	-benchmem -benchtime "$servetime" -count "$count" . | tee -a "$raw" >&2

{
	printf '{\n'
	printf '  "pr": 10,\n'
	printf '  "benchmark": "BenchmarkServeMixed+BenchmarkMaintainSharedViews+BenchmarkMaintainCached+BenchmarkMaintainTransactional",\n'
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "servetime": "%s",\n' "$servetime"
	printf '  "count": %s,\n' "$count"
	printf '  "cpus": %s,\n' "$(nproc 2>/dev/null || echo 1)"
	printf '  "goos_goarch": "%s/%s",\n' "$(go env GOOS)" "$(go env GOARCH)"
	printf '  "results": [\n'
	awk '
		function median(vals, name, n,    i, j, tmp, a) {
			for (i = 1; i <= n; i++) a[i] = vals[name, i]
			for (i = 2; i <= n; i++)
				for (j = i; j > 1 && a[j-1] > a[j]; j--) {
					tmp = a[j]; a[j] = a[j-1]; a[j-1] = tmp
				}
			if (n % 2) return a[(n + 1) / 2]
			return (a[n / 2] + a[n / 2 + 1]) / 2
		}
		/^Benchmark(ServeMixed|MaintainSharedViews|MaintainCached|MaintainTransactional)/ {
			name = $1; sub(/-[0-9]+$/, "", name)
			if (!(name in runs)) order[no++] = name
			r = ++runs[name]
			for (i = 2; i < NF; i++) {
				if ($(i+1) == "ns/op") ns[name, r] = $i
				else if ($(i+1) == "B/op") { bytes[name, r] = $i; hasb[name] = 1 }
				else if ($(i+1) == "allocs/op") { allocs[name, r] = $i; hasa[name] = 1 }
				else if ($(i+1) == "views_skipped/op") { skips[name, r] = $i; hass[name] = 1 }
				else if ($(i+1) == "p50_ns") { p50[name, r] = $i; hasp[name] = 1 }
				else if ($(i+1) == "p99_ns") { p99[name, r] = $i; hasp[name] = 1 }
			}
			iters[name] += $2
		}
		END {
			for (j = 0; j < no; j++) {
				name = order[j]; n = runs[name]
				line = sprintf("    {\"name\": \"%s\", \"runs\": %d, \"iterations\": %d, \"ns_per_op\": %.0f", \
					name, n, iters[name] / n, median(ns, name, n))
				line = line ", \"ns_samples\": ["
				for (i = 1; i <= n; i++)
					line = line sprintf("%s%.0f", i > 1 ? ", " : "", ns[name, i])
				line = line "]"
				if (hasb[name]) line = line sprintf(", \"bytes_per_op\": %.0f", median(bytes, name, n))
				if (hasa[name]) line = line sprintf(", \"allocs_per_op\": %.0f", median(allocs, name, n))
				if (hass[name]) line = line sprintf(", \"views_skipped_per_op\": %.3f", median(skips, name, n))
				if (hasp[name]) {
					line = line sprintf(", \"p50_ns\": %.0f, \"p99_ns\": %.0f", \
						median(p50, name, n), median(p99, name, n))
				}
				line = line "}"
				if (j) printf(",\n")
				printf("%s", line)
			}
			printf("\n")
		}
	' "$raw"
	printf '  ]\n'
	printf '}\n'
} > BENCH_PR10.json

echo "wrote BENCH_PR10.json" >&2
