#!/bin/sh
# bench_pr3.sh — capture the PR 3 journal-overhead benchmark into
# BENCH_PR3.json: the same maintenance batch with the provenance journal
# off and on (BenchmarkMaintainJournaled), plus the PR 2 observability
# benchmark re-run for trajectory comparison against BENCH_PR2.json. The
# journal=off arm must stay allocation-identical to obs=off: the disabled
# journal is one atomic load plus nil-recorder no-ops.
#
# Usage: scripts/bench_pr3.sh [benchtime]
#   benchtime  go test -benchtime value (default 10x)
set -eu
cd "$(dirname "$0")/.."

benchtime="${1:-10x}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkMaintainJournaled|BenchmarkMaintainObserved' \
	-benchmem -benchtime "$benchtime" . | tee "$raw" >&2

{
	printf '{\n'
	printf '  "pr": 3,\n'
	printf '  "benchmark": "BenchmarkMaintainJournaled+BenchmarkMaintainObserved",\n'
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "cpus": %s,\n' "$(nproc 2>/dev/null || echo 1)"
	printf '  "goos_goarch": "%s/%s",\n' "$(go env GOOS)" "$(go env GOARCH)"
	printf '  "results": [\n'
	awk '
		/^Benchmark(MaintainJournaled|MaintainObserved)\// {
			name = $1; sub(/-[0-9]+$/, "", name)
			line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, $2, $3, $5, $7)
			if (n++) printf(",\n")
			printf("%s", line)
		}
		END { printf("\n") }
	' "$raw"
	printf '  ]\n'
	printf '}\n'
} > BENCH_PR3.json

echo "wrote BENCH_PR3.json" >&2
