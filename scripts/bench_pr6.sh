#!/bin/sh
# bench_pr6.sh — capture the PR 6 arena + batch-compaction benchmarks into
# BENCH_PR6.json. BenchmarkMaintainCached and BenchmarkMaintainTransactional
# re-run under the same names as BENCH_PR5.json so scripts/bench_diff.sh and
# scripts/allocs_diff.sh can compare the captures: PR 6 moved the round's
# tuple traffic into a round-scoped arena and compacts the primitive batch
# before validation, so the cached-join round is required to get at least
# 2x faster and 3x lighter in allocs/op (see ISSUE.md) and check.sh holds
# the pair to "no regression" thresholds. BenchmarkDeltaNav prices one
# propagate round arena-on vs arena-off at the engine level.
#
# Each benchmark runs -count times and the capture stores the per-name MEAN,
# because the benchmark machine is noisy.
#
# Usage: scripts/bench_pr6.sh [benchtime] [count]
#   benchtime  go test -benchtime value (default 10x)
#   count      go test -count value (default 3)
set -eu
cd "$(dirname "$0")/.."

benchtime="${1:-10x}"
count="${2:-3}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkMaintainCached|BenchmarkMaintainTransactional' \
	-benchmem -benchtime "$benchtime" -count "$count" . | tee "$raw" >&2
go test -run '^$' -bench 'BenchmarkDeltaNav|BenchmarkTupleConstructors' \
	-benchmem -benchtime "$benchtime" -count "$count" ./internal/xat/ | tee -a "$raw" >&2

{
	printf '{\n'
	printf '  "pr": 6,\n'
	printf '  "benchmark": "BenchmarkMaintainCached+BenchmarkMaintainTransactional+BenchmarkDeltaNav+BenchmarkTupleConstructors",\n'
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "count": %s,\n' "$count"
	printf '  "cpus": %s,\n' "$(nproc 2>/dev/null || echo 1)"
	printf '  "goos_goarch": "%s/%s",\n' "$(go env GOOS)" "$(go env GOARCH)"
	printf '  "results": [\n'
	awk '
		/^Benchmark(MaintainCached|MaintainTransactional|DeltaNav|TupleConstructors)/ {
			name = $1; sub(/-[0-9]+$/, "", name)
			for (i = 2; i < NF; i++) {
				if ($(i+1) == "ns/op") ns[name] += $i
				else if ($(i+1) == "B/op") { bytes[name] += $i; hasb[name] = 1 }
				else if ($(i+1) == "allocs/op") { allocs[name] += $i; hasa[name] = 1 }
				else if ($(i+1) == "views_skipped/op") { skips[name] += $i; hass[name] = 1 }
			}
			iters[name] += $2
			if (!(name in runs)) order[no++] = name
			runs[name]++
		}
		END {
			for (j = 0; j < no; j++) {
				name = order[j]; n = runs[name]
				line = sprintf("    {\"name\": \"%s\", \"runs\": %d, \"iterations\": %d, \"ns_per_op\": %.0f", \
					name, n, iters[name] / n, ns[name] / n)
				if (hasb[name]) line = line sprintf(", \"bytes_per_op\": %.0f", bytes[name] / n)
				if (hasa[name]) line = line sprintf(", \"allocs_per_op\": %.0f", allocs[name] / n)
				if (hass[name]) line = line sprintf(", \"views_skipped_per_op\": %.3f", skips[name] / n)
				line = line "}"
				if (j) printf(",\n")
				printf("%s", line)
			}
			printf("\n")
		}
	' "$raw"
	printf '  ]\n'
	printf '}\n'
} > BENCH_PR6.json

echo "wrote BENCH_PR6.json" >&2
