#!/bin/sh
# structcheck.sh — a structcheck-style lint for one file's struct fields:
# every field declared by a top-level struct in the file must be referenced
# somewhere in the repo (as a .Field selector or a Field: literal key), or
# the check fails. Dead fields in plumbing structs are how stale design
# survives refactors — a field nothing reads is either a bug (someone meant
# to consume it) or clutter; either way it should not pass CI silently.
#
# The match is deliberately permissive: any .Field or Field: anywhere counts,
# including uses of a same-named field of another type, so the lint can
# under-report but never false-positives on shared names.
#
# Usage: scripts/structcheck.sh [file.go ...]   (default: the PR 9 DAG file)
set -eu
cd "$(dirname "$0")/.."

status=0
for file in "${@:-internal/xat/shared.go}"; do
	if [ ! -f "$file" ]; then
		echo "structcheck: $file: no such file" >&2
		exit 2
	fi
	# Collect (struct, field) pairs from the file's top-level struct types.
	# Field lines inside a struct body start with an identifier (possibly a
	# comma-separated list) followed by a type; comments and blank lines are
	# skipped, embedded fields (bare type, no two tokens) too.
	pairs="$(awk '
		/^type [A-Za-z_][A-Za-z0-9_]* struct \{/ { s = $2; ins = 1; next }
		ins && /^\}/ { ins = 0; next }
		ins {
			line = $0
			sub(/\/\/.*/, "", line)
			sub(/^[ \t]+/, "", line)
			if (line == "") next
			n = split(line, parts, /[ \t]+/)
			if (n < 2) next
			for (i = 1; i <= n; i++) {
				name = parts[i]
				more = sub(/,$/, "", name)
				if (name !~ /^[A-Za-z_][A-Za-z0-9_]*$/) break
				print s, name
				if (!more) break
			}
		}
	' "$file")"
	if [ -z "$pairs" ]; then
		echo "structcheck: $file declares no struct fields" >&2
		exit 2
	fi
	echo "$pairs" | while read -r struct field; do
		if ! grep -rqE --include='*.go' "\.${field}\b|\b${field}:" .; then
			echo "structcheck: ${file}: ${struct}.${field} is never used" >&2
			echo "FAIL" >> "${TMPDIR:-/tmp}/structcheck_fail.$$"
		fi
	done
	if [ -f "${TMPDIR:-/tmp}/structcheck_fail.$$" ]; then
		rm -f "${TMPDIR:-/tmp}/structcheck_fail.$$"
		status=1
	fi
	count="$(echo "$pairs" | wc -l | tr -d ' ')"
	echo "structcheck: $file: $count fields checked" >&2
done
exit "$status"
