#!/bin/sh
# bench_pr4.sh — capture the PR 4 state-cache benchmark into BENCH_PR4.json:
# the same small-delta maintenance round over a large source with the
# cross-round base-table cache off and on (BenchmarkMaintainCached), plus
# the disjoint-batch arm whose views_skipped/op metric proves the
# relevance filter prunes untouched views. BenchmarkMaintainJournaled is
# re-run alongside so scripts/bench_diff.sh can compare this capture
# against BENCH_PR3.json on the shared names.
#
# The awk extraction scans for unit tokens instead of fixed columns: the
# cache=skip arm reports a custom views_skipped/op metric, which shifts
# the B/op and allocs/op positions on its line.
#
# Usage: scripts/bench_pr4.sh [benchtime]
#   benchtime  go test -benchtime value (default 10x)
set -eu
cd "$(dirname "$0")/.."

benchtime="${1:-10x}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkMaintainCached|BenchmarkMaintainJournaled' \
	-benchmem -benchtime "$benchtime" . | tee "$raw" >&2

{
	printf '{\n'
	printf '  "pr": 4,\n'
	printf '  "benchmark": "BenchmarkMaintainCached+BenchmarkMaintainJournaled",\n'
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "cpus": %s,\n' "$(nproc 2>/dev/null || echo 1)"
	printf '  "goos_goarch": "%s/%s",\n' "$(go env GOOS)" "$(go env GOARCH)"
	printf '  "results": [\n'
	awk '
		/^Benchmark(MaintainCached|MaintainJournaled)\// {
			name = $1; sub(/-[0-9]+$/, "", name)
			ns = ""; bytes = ""; allocs = ""; skips = ""
			for (i = 2; i < NF; i++) {
				if ($(i+1) == "ns/op") ns = $i
				else if ($(i+1) == "B/op") bytes = $i
				else if ($(i+1) == "allocs/op") allocs = $i
				else if ($(i+1) == "views_skipped/op") skips = $i
			}
			line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, ns)
			if (bytes != "") line = line sprintf(", \"bytes_per_op\": %s", bytes)
			if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
			if (skips != "") line = line sprintf(", \"views_skipped_per_op\": %s", skips)
			line = line "}"
			if (n++) printf(",\n")
			printf("%s", line)
		}
		END { printf("\n") }
	' "$raw"
	printf '  ]\n'
	printf '}\n'
} > BENCH_PR4.json

echo "wrote BENCH_PR4.json" >&2
