#!/bin/sh
# bench_pr2.sh — capture the PR 2 observability-overhead benchmark into
# BENCH_PR2.json: the same maintenance batch with observability off, with
# the metrics registry on, and with full span tracing (benchstat-comparable
# sub-benchmarks), plus the PR 1 multi-view benchmark re-run for trajectory
# comparison against BENCH_PR1.json.
#
# Usage: scripts/bench_pr2.sh [benchtime]
#   benchtime  go test -benchtime value (default 10x)
set -eu
cd "$(dirname "$0")/.."

benchtime="${1:-10x}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkMaintainObserved|BenchmarkMaintainMultiView' \
	-benchmem -benchtime "$benchtime" . | tee "$raw" >&2

{
	printf '{\n'
	printf '  "pr": 2,\n'
	printf '  "benchmark": "BenchmarkMaintainObserved+BenchmarkMaintainMultiView",\n'
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "cpus": %s,\n' "$(nproc 2>/dev/null || echo 1)"
	printf '  "goos_goarch": "%s/%s",\n' "$(go env GOOS)" "$(go env GOARCH)"
	printf '  "results": [\n'
	awk '
		/^Benchmark(MaintainObserved|MaintainMultiView)\// {
			name = $1; sub(/-[0-9]+$/, "", name)
			line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, $2, $3, $5, $7)
			if (n++) printf(",\n")
			printf("%s", line)
		}
		END { printf("\n") }
	' "$raw"
	printf '  ]\n'
	printf '}\n'
} > BENCH_PR2.json

echo "wrote BENCH_PR2.json" >&2
