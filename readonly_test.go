package xqview

// Verifies the Reader read-only contract documented on xmldoc.Reader: the
// materialize and propagate phases treat the base store as strictly
// read-only, even though the store hands out its internal slices and node
// pointers. The test snapshots every observable byte of the store (nodes,
// child indexes, attribute indexes) before running each phase and fails on
// any difference afterwards — a write-through anywhere in the engine shows
// up as a mutated snapshot.

import (
	"reflect"
	"testing"

	"xqview/internal/core"
	"xqview/internal/flexkey"
	"xqview/internal/obs"
	"xqview/internal/update"
	"xqview/internal/validate"
	"xqview/internal/xat"
	"xqview/internal/xmldoc"
)

// snapEntry is the deep-copied observable state of one stored node.
type snapEntry struct {
	node     xmldoc.Node
	children []flexkey.Key
	attrs    []flexkey.Key
}

// snapshotStore deep-copies everything a Reader exposes, walking each
// document from its root.
func snapshotStore(s *xmldoc.Store) map[flexkey.Key]snapEntry {
	snap := map[flexkey.Key]snapEntry{}
	var walk func(k flexkey.Key)
	walk = func(k flexkey.Key) {
		n, ok := s.Node(k)
		if !ok {
			return
		}
		e := snapEntry{
			node:     *n,
			children: append([]flexkey.Key(nil), s.Children(k)...),
			attrs:    append([]flexkey.Key(nil), s.Attrs(k)...),
		}
		snap[k] = e
		for _, c := range e.children {
			walk(c)
		}
		for _, a := range e.attrs {
			walk(a)
		}
	}
	for _, doc := range s.Docs() {
		if k, ok := s.Root(doc); ok {
			walk(k)
		}
	}
	return snap
}

// requireUnchanged re-snapshots and diffs against the reference, reporting
// the first divergent key for debuggability.
func requireUnchanged(t *testing.T, s *xmldoc.Store, want map[flexkey.Key]snapEntry, phase string) {
	t.Helper()
	got := snapshotStore(s)
	if len(got) != len(want) {
		t.Fatalf("%s changed the store's node population: %d nodes, want %d", phase, len(got), len(want))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("%s removed node %s from the store", phase, k)
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("%s mutated the store at %s:\nbefore: %+v\nafter:  %+v", phase, k, w, g)
		}
	}
}

func TestReaderContractMaterializeAndPropagate(t *testing.T) {
	s := xmldoc.NewStore()
	if _, err := s.Load("bib.xml", `<bib>
		<book year="1994"><title>TCP/IP Illustrated</title><price>65.95</price></book>
		<book year="2000"><title>Data on the Web</title><price>39.95</price></book>
	</bib>`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("prices.xml", `<prices>
		<entry><b-title>Data on the Web</b-title><price>34.95</price></entry>
	</prices>`); err != nil {
		t.Fatal(err)
	}
	snap := snapshotStore(s)

	query := `<result>{
		for $b in doc("bib.xml")/bib/book, $e in doc("prices.xml")/prices/entry
		where $b/title = $e/b-title
		return <pair>{$b/title} {$e/price}</pair> }</result>`
	v, err := core.NewView(s, query)
	if err != nil {
		t.Fatal(err)
	}
	requireUnchanged(t, s, snap, "materialize")

	// One primitive of each kind, across both documents.
	bibRoot, _ := s.RootElem("bib.xml")
	priRoot, _ := s.RootElem("prices.xml")
	books := xmldoc.ChildElems(s, bibRoot, "book")
	entries := xmldoc.ChildElems(s, priRoot, "entry")
	prices := xmldoc.ChildElems(s, entries[0], "price")
	texts := xmldoc.TextChildren(s, prices[0])
	prims := []*update.Primitive{
		{Kind: update.Insert, Doc: "bib.xml", Parent: bibRoot,
			Frag: xmldoc.Elem("book", xmldoc.AttrF("year", "1999"),
				xmldoc.Elem("title", xmldoc.TextF("Web Views")),
				xmldoc.Elem("price", xmldoc.TextF("20.00")))},
		{Kind: update.Delete, Doc: "bib.xml", Key: books[0]},
		{Kind: update.Replace, Doc: "prices.xml", Key: texts[0], NewValue: "29.95"},
	}
	batch, err := validate.Validate(s, v.SAPT, prims)
	if err != nil {
		t.Fatal(err)
	}
	requireUnchanged(t, s, snap, "validate")

	// Assemble the propagate input exactly as the maintenance pipeline does:
	// the base store plus an updated-reader overlay carrying the batch.
	din := deltaInputFor(s, batch)
	if _, err := xat.PropagateDelta(v.Plan, din); err != nil {
		t.Fatal(err)
	}
	requireUnchanged(t, s, snap, "propagate")

	// The cached engine shares the same contract, including its Commit.
	cache := xat.NewStateCache()
	if _, err := xat.PropagateDeltaCached(v.Plan, din, obs.Span{}, nil, cache); err != nil {
		t.Fatal(err)
	}
	cache.Commit(din.Regions)
	if _, err := xat.PropagateDeltaCached(v.Plan, din, obs.Span{}, nil, cache); err != nil {
		t.Fatal(err)
	}
	requireUnchanged(t, s, snap, "cached propagate")
}

// deltaInputFor mirrors the pipeline's propagate-input assembly (core.
// deltaInput) for a validated batch.
func deltaInputFor(s *xmldoc.Store, batch *validate.Batch) *xat.DeltaInput {
	ur := xmldoc.NewUpdatedReader(s, batch.Overlay)
	regions := map[string][]*xat.Region{}
	for doc, prims := range batch.ByDoc {
		for _, p := range prims {
			var r *xat.Region
			switch p.Kind {
			case update.Insert:
				r = &xat.Region{Mode: xat.RegionInsert, Anchor: p.Key, Parent: p.Parent}
				ur.InsertedUnder[p.Parent] = append(ur.InsertedUnder[p.Parent], p.Key)
			case update.Delete:
				r = &xat.Region{Mode: xat.RegionDelete, Anchor: p.Key}
				ur.Deleted[p.Key] = true
			case update.Replace:
				r = &xat.Region{Mode: xat.RegionModify, Anchor: p.Key, NewValue: p.NewValue}
				ur.Replaced[p.Key] = p.NewValue
			}
			regions[doc] = append(regions[doc], r)
		}
	}
	ur.Freeze()
	return &xat.DeltaInput{Base: s, New: ur, Regions: regions}
}
